// E7 — baselines and Remark 1's reduction blow-up.
//
// Table A: solution quality of the natural baselines (greedy variants, the
// vertex-splitting matching reduction) against the proportional-allocation
// pipeline, with exact OPT as the denominator.
// Table B: the arboricity blow-up of the vertex-splitting reduction — a
// star of arboricity 1 becomes (nearly) complete bipartite, λ = Θ(n),
// which is why reductions to matching cannot exploit uniform sparsity.
#include "bench_common.hpp"

#include <vector>

int main() {
  using namespace mpcalloc;
  using namespace mpcalloc::bench;

  print_preamble("E7: baselines and the matching-reduction blow-up (Remark 1)",
                 "Proportional allocation exploits low arboricity directly; "
                 "the vertex-splitting reduction destroys it");

  Table quality("solution quality (ratio = OPT/achieved, 1.0 = optimal)");
  quality.header({"instance", "OPT", "greedy", "rand-greedy", "degree-greedy",
                  "proportional+round", "boosted 1.1-target"});

  struct Row {
    const char* name;
    std::uint32_t lambda;
    std::uint32_t cap_hi;
    std::uint64_t seed;
  };
  for (const Row& row : std::vector<Row>{{"forest", 1, 4, 61},
                                         {"lam8", 8, 4, 62},
                                         {"lam32", 32, 8, 63}}) {
    const AllocationInstance instance =
        standard_instance(4000, 1600, row.lambda, row.cap_hi, row.seed);
    const auto opt = optimal_allocation_value(instance);
    Xoshiro256pp rng(row.seed);

    const double greedy_r = approximation_ratio(
        opt, static_cast<double>(greedy_allocation(instance).size()));
    const double rand_r = approximation_ratio(
        opt,
        static_cast<double>(randomized_greedy_allocation(instance, rng).size()));
    const double degree_r = approximation_ratio(
        opt,
        static_cast<double>(degree_aware_greedy_allocation(instance).size()));

    const FractionalAllocation frac =
        solve_two_plus_eps(instance, row.lambda, 0.25).allocation;
    BestOfRoundingResult rounded = round_best_of(instance, frac, rng);
    make_maximal(instance, rounded.best);
    const double prop_r = approximation_ratio(
        opt, static_cast<double>(rounded.best.size()));
    const BoostResult boosted = boost_to_one_plus_eps(instance, rounded.best, 0.1);
    const double boost_r = approximation_ratio(
        opt, static_cast<double>(boosted.allocation.size()));

    quality.row({row.name, Table::integer(static_cast<long long>(opt)),
                 Table::num(greedy_r, 3), Table::num(rand_r, 3),
                 Table::num(degree_r, 3), Table::num(prop_r, 3),
                 Table::num(boost_r, 3)});
  }
  quality.print(std::cout);

  Table blowup("arboricity blow-up of the split reduction on stars");
  blowup.header({"leaves n", "C_center", "orig degeneracy", "split edges",
                 "split degeneracy", "split lambda lower bound"});
  for (const std::size_t n : {50u, 100u, 200u, 400u}) {
    AllocationInstance star{star_graph(n),
                            {static_cast<std::uint32_t>(n - 1)}};
    const auto orig = estimate_arboricity(star.graph);
    const SplitGraph split = split_capacities(star);
    const auto reduced = estimate_arboricity(split.graph);
    blowup.row({Table::integer(static_cast<long long>(n)),
                Table::integer(static_cast<long long>(n - 1)),
                Table::integer(orig.degeneracy),
                Table::integer(static_cast<long long>(split.graph.num_edges())),
                Table::integer(reduced.degeneracy),
                Table::integer(reduced.lower_bound)});
  }
  blowup.print(std::cout);
  std::cout << "\nShape check: original degeneracy stays 1 while the split "
               "graph's lambda lower bound grows ~n/4 — the Theta(n) blow-up "
               "of Remark 1.\n";
  return 0;
}
