// E12 (extension) — the paper's open question (§1.2.1): does the
// proportional-priority approach extend to general b-matching in o(log n)
// rounds? The paper offers allocation as "the first step"; this experiment
// takes the natural second step empirically.
//
// We run the two-sided proportional dynamics (every u spreads b_u units,
// see src/bmatch/proportional_bmatching.hpp) for a log-λ round budget and
// report the true ratio against the exact flow oracle, next to the greedy
// 2-approximation and the certified (1+ε) booster endpoint. A second table
// sweeps the round budget to expose the convergence speed.
#include "bench_common.hpp"

#include "bmatch/bmatching.hpp"
#include "bmatch/proportional_bmatching.hpp"

#include <vector>

int main() {
  using namespace mpcalloc;
  using namespace mpcalloc::bench;

  print_preamble("E12 (extension): two-sided proportional b-matching",
                 "Open question of Section 1.2.1 — no proven bound; measured "
                 "ratios vs exact OPT (lower is better, 1.0 = optimal)");

  Table table("n_L=3000, n_R=1200, caps U[1,6] on BOTH sides, eps=0.25");
  table.header({"lambda", "OPT", "greedy ratio", "proportional ratio",
                "rounds (log-lambda)", "boosted ratio (<=1.17 certified)"});

  for (const std::uint32_t lambda : {1u, 4u, 16u, 64u}) {
    Xoshiro256pp rng(3000 + lambda);
    BMatchingInstance instance;
    instance.graph = union_of_forests(3000, 1200, lambda, rng);
    instance.left_capacities = uniform_capacities(3000, 1, 6, rng);
    instance.right_capacities = uniform_capacities(1200, 1, 6, rng);
    const auto opt = optimal_bmatching_value(instance);

    const BMatching greedy = greedy_bmatching(instance);
    ProportionalBMatchingConfig config;
    config.epsilon = 0.25;
    config.rounds = tau_for_arboricity(lambda, 0.25);
    const ProportionalBMatchingResult proportional =
        run_proportional_bmatching(instance, config);
    const BMatchBoostResult boosted = boost_bmatching(instance, greedy, 11);

    table.row(
        {Table::integer(lambda), Table::integer(static_cast<long long>(opt)),
         Table::num(approximation_ratio(opt,
                                        static_cast<double>(greedy.size())),
                    4),
         Table::num(approximation_ratio(opt, proportional.matching.weight()),
                    4),
         Table::integer(static_cast<long long>(config.rounds)),
         Table::num(approximation_ratio(
                        opt, static_cast<double>(boosted.matching.size())),
                    4)});
  }
  table.print(std::cout);

  Table convergence("convergence of the two-sided dynamics (lambda=16)");
  convergence.header({"rounds", "fractional ratio"});
  {
    Xoshiro256pp rng(3333);
    BMatchingInstance instance;
    instance.graph = union_of_forests(3000, 1200, 16, rng);
    instance.left_capacities = uniform_capacities(3000, 1, 6, rng);
    instance.right_capacities = uniform_capacities(1200, 1, 6, rng);
    const auto opt = optimal_bmatching_value(instance);
    for (const std::size_t rounds : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      ProportionalBMatchingConfig config;
      config.epsilon = 0.25;
      config.rounds = rounds;
      const ProportionalBMatchingResult result =
          run_proportional_bmatching(instance, config);
      convergence.row(
          {Table::integer(static_cast<long long>(rounds)),
           Table::num(approximation_ratio(opt, result.matching.weight()), 4)});
    }
  }
  convergence.print(std::cout);
  std::cout << "\nShape check: the two-sided dynamics track the allocation "
               "behaviour — constant-factor quality within a log(lambda) "
               "round budget — supporting the paper's conjecture that the "
               "o(log n) barrier can fall for b-matching too. No theorem is "
               "claimed; this is the measured extension experiment.\n";
  return 0;
}
