// bench_load — instance storage and startup cost of the arena layout.
//
// Three questions, one deterministic instance:
//   1. Bytes: how much smaller is the contiguous 32-bit-offset arena than
//      the seed's five-vector layout (std::size_t offsets, five separate
//      heap blocks)? Reported as exact byte counters (deterministic — the
//      perf gate compares them tightly), plus resident-set readings as
//      loose metrics.
//   2. Startup: wall-clock for text parse vs pack vs one-write save vs
//      mmap load vs read-into-heap load.
//   3. Correctness certificates (the gate requires *_certificate_ok == 1):
//      solvers produce bitwise-identical SolveResults on the heap-built,
//      mmap-loaded, and edge-permuted images across thread counts, and the
//      saved image's payload checksums verify.
//
// `--json=PATH` emits the metrics for scripts/compare_bench.py.
#include "bench_common.hpp"
#include "bench_json.hpp"

#include "util/cli.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <fstream>
#include <span>
#include <string>
#include <vector>

namespace {

using namespace mpcalloc;
using namespace mpcalloc::bench;

/// Bytes the pre-arena representation spent on the same graph: five heap
/// vectors with std::size_t CSR offsets (the layout this bench exists to
/// retire). Excludes per-vector allocator slack, so the comparison is
/// conservative.
std::uint64_t seed_layout_bytes(const BipartiteGraph& g) {
  const std::uint64_t m = g.num_edges();
  return m * sizeof(Edge) + 2 * m * sizeof(Incidence) +
         (g.num_left() + 1) * sizeof(std::size_t) +
         (g.num_right() + 1) * sizeof(std::size_t);
}

/// VmRSS in MiB from /proc/self/status (0.0 when unavailable).
double resident_mib() {
  std::ifstream status("/proc/self/status");
  std::string key;
  while (status >> key) {
    if (key == "VmRSS:") {
      double kib = 0.0;
      status >> kib;
      return kib / 1024.0;
    }
    status.ignore(1 << 20, '\n');
  }
  return 0.0;
}

/// Bitwise SolveResult comparison. `remap` (new edge id → original id)
/// translates per-edge values when `b` ran on a renumbered image; empty
/// means identical edge ids.
bool same_result(const SolveResult& a, const SolveResult& b,
                 std::span<const EdgeId> remap) {
  if (a.match_weight != b.match_weight) return false;
  if (a.rounds_executed != b.rounds_executed) return false;
  if (a.final_levels != b.final_levels) return false;
  if (a.final_alloc != b.final_alloc) return false;
  if (a.allocation.x.size() != b.allocation.x.size()) return false;
  if (remap.empty()) return a.allocation.x == b.allocation.x;
  for (std::size_t e = 0; e < b.allocation.x.size(); ++e) {
    if (a.allocation.x[remap[e]] != b.allocation.x[e]) return false;
  }
  return true;
}

SolveResult run(const AllocationInstance& instance, SolveMethod method,
                std::size_t threads) {
  SolveOptions options;
  options.method = method;
  options.num_threads = threads;
  options.epsilon = 0.25;
  options.lambda = 4.0;
  options.max_rounds = method == SolveMethod::kProportional ? 12 : 0;
  options.seed = 7;
  return Solver(options).solve(instance);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_load: arena layout size and load-path cost");
  cli.option("json", "", "write machine-readable metrics JSON to this path");
  cli.option("seed", "42", "instance RNG seed");
  cli.threads_option();
  if (!cli.parse(argc, argv)) return 0;
  const std::uint64_t seed = cli.get_size("seed");

  print_preamble("bench_load: instance layout & load paths",
                 "contiguous 32-bit-offset arena vs the five-vector seed "
                 "layout; mmap load must be instant and solver-invisible");

  const std::string dir = "/tmp/mpcalloc_bench_load_" + std::to_string(::getpid());
  const std::string text_path = dir + ".alloc";
  const std::string mpcb_path = dir + ".mpcb";
  const std::string perm_path = dir + ".perm.mpcb";

  JsonMetrics metrics("bench_load");
  try {
    // -- layout instance: sparse enough that offset width matters ---------
    const AllocationInstance instance =
        standard_instance(150000, 75000, /*lambda=*/2, /*cap_hi=*/5, seed);
    const std::uint64_t seed_bytes = seed_layout_bytes(instance.graph);
    const std::uint64_t arena_bytes = instance.graph.arena()->size();
    const double shrink =
        static_cast<double>(arena_bytes) / static_cast<double>(seed_bytes);

    WallTimer timer;
    save_instance(text_path, instance);
    const double text_save_ms = timer.millis();

    timer.reset();
    const AllocationInstance from_text = load_instance(text_path);
    const double text_load_ms = timer.millis();

    timer.reset();
    const auto packed = pack_instance(instance);
    const double pack_ms = timer.millis();

    timer.reset();
    save_instance_mpcb(mpcb_path, instance);
    const double mpcb_save_ms = timer.millis();

    const double rss_before_mmap = resident_mib();
    timer.reset();
    const AllocationInstance mapped = load_instance_mmap(mpcb_path);
    const double mmap_load_ms = timer.millis();
    const double rss_after_mmap = resident_mib();

    timer.reset();
    const AllocationInstance copied = load_instance_mpcb_copy(mpcb_path);
    const double copy_load_ms = timer.millis();

    const bool checksums_ok = [&] {
      mapped.graph.arena()->verify_checksums();
      return true;
    }();

    Table layout("layout: n_L=150000 n_R=75000 lambda=2");
    layout.header({"layout", "bytes", "vs seed"});
    layout.row({"seed 5-vector", Table::integer(static_cast<long long>(seed_bytes)),
                Table::num(1.0, 3)});
    layout.row({"arena (u32 offsets)",
                Table::integer(static_cast<long long>(arena_bytes)),
                Table::num(shrink, 3)});

    Table loads("load paths (ms)");
    loads.header({"text save", "text load", "pack", "mpcb save", "mmap load",
                  "copy load"});
    loads.row({Table::num(text_save_ms, 1), Table::num(text_load_ms, 1),
               Table::num(pack_ms, 1), Table::num(mpcb_save_ms, 1),
               Table::num(mmap_load_ms, 3), Table::num(copy_load_ms, 1)});
    layout.print(std::cout);
    loads.print(std::cout);

    metrics.counter("num_edges",
                    static_cast<double>(instance.graph.num_edges()));
    metrics.counter("seed_layout_bytes", static_cast<double>(seed_bytes));
    metrics.counter("arena_bytes", static_cast<double>(arena_bytes));
    metrics.counter("arena_vs_seed_ratio", shrink);
    metrics.counter("packed_equals_saved",
                    packed->size() == mapped.graph.arena()->size() ? 1.0 : 0.0);
    metrics.counter("arena_checksum_certificate_ok", checksums_ok ? 1.0 : 0.0);
    metrics.time_ms("text_save_ms", text_save_ms);
    metrics.time_ms("text_load_ms", text_load_ms);
    metrics.time_ms("pack_ms", pack_ms);
    metrics.time_ms("mpcb_save_ms", mpcb_save_ms);
    metrics.time_ms("mmap_load_ms", mmap_load_ms);
    metrics.time_ms("copy_load_ms", copy_load_ms);
    metrics.time_ms("rss_before_mmap_mib", rss_before_mmap);
    metrics.time_ms("rss_after_mmap_mib", rss_after_mmap);

    // -- solver identity: heap vs mmap vs permuted image ------------------
    // A smaller instance keeps 20+ solves cheap; identity is about edge
    // ids and memory backing, not scale.
    const AllocationInstance small =
        standard_instance(6000, 2000, /*lambda=*/4, /*cap_hi=*/4, seed + 1);
    const std::string small_path = dir + ".small.mpcb";
    save_instance_mpcb(small_path, small);
    const AllocationInstance small_mapped = load_instance_mmap(small_path);

    PackOptions degree_sorted;
    degree_sorted.order = EdgeOrder::kDegreeSorted;
    save_instance_mpcb(perm_path, small, degree_sorted);
    const AllocationInstance small_perm = load_instance_mmap(perm_path);

    bool mmap_identical = true;
    bool perm_identical = true;
    Table identity("solver identity (heap vs mmap vs permuted)");
    identity.header({"method", "threads", "mmap", "permuted"});
    const std::pair<SolveMethod, const char*> methods[] = {
        {SolveMethod::kProportional, "proportional"},
        {SolveMethod::kAdaptive, "adaptive"},
        {SolveMethod::kMpcNaive, "mpc-naive"},
    };
    for (const auto& [method, name] : methods) {
      for (const std::size_t threads : {1, 2, 4}) {
        const SolveResult heap = run(small, method, threads);
        const bool mm =
            same_result(heap, run(small_mapped, method, threads), {});
        mmap_identical = mmap_identical && mm;
        // The permuted-image guarantee covers the exact solvers: their
        // traversals follow adjacency order, which a renumbering never
        // touches. The MPC drivers shard edges across machines *by edge
        // id*, so a renumbering legitimately changes the simulated machine
        // layout (and with it sampling draws) — excluded by design.
        std::string perm_cell = "n/a";
        if (method != SolveMethod::kMpcNaive) {
          const bool pm = same_result(heap, run(small_perm, method, threads),
                                      small_perm.graph.edge_remap());
          perm_identical = perm_identical && pm;
          perm_cell = pm ? "ok" : "MISMATCH";
        }
        identity.row({name, Table::integer(static_cast<long long>(threads)),
                      mm ? "ok" : "MISMATCH", perm_cell});
      }
    }
    identity.print(std::cout);
    metrics.counter("mmap_identity_certificate_ok", mmap_identical ? 1.0 : 0.0);
    metrics.counter("permuted_identity_certificate_ok",
                    perm_identical ? 1.0 : 0.0);

    // The text round-trip must reproduce the instance exactly.
    metrics.counter("text_roundtrip_certificate_ok",
                    (from_text.graph.edges().size() ==
                         instance.graph.edges().size() &&
                     std::equal(from_text.graph.edges().begin(),
                                from_text.graph.edges().end(),
                                instance.graph.edges().begin()) &&
                     from_text.capacities == instance.capacities &&
                     copied.capacities == instance.capacities)
                        ? 1.0
                        : 0.0);

    std::remove(text_path.c_str());
    std::remove(mpcb_path.c_str());
    std::remove(perm_path.c_str());
    std::remove(small_path.c_str());
  } catch (...) {
    std::remove(text_path.c_str());
    std::remove(mpcb_path.c_str());
    std::remove(perm_path.c_str());
    std::remove((dir + ".small.mpcb").c_str());
    throw;
  }

  if (!cli.get("json").empty()) {
    metrics.write(cli.get("json"));
    std::printf("wrote %s\n", cli.get("json").c_str());
  }
  return 0;
}
