// E8 — always-on allocation serving: traffic replay against the
// serve::AllocationService.
//
// Two phases:
//
//  1. Identity sweep: the same deterministic mutation stream is applied in
//     lockstep to services pinned at 1/2/4/7 threads. Every published
//     generation must be bitwise identical across thread counts AND to a
//     cold facade solve of the same mutated instance — the warm restart's
//     headline invariant. `warm_identity_certificate_ok` gates CI at 1.0.
//
//  2. Traffic replay: a seeded Poisson-interleaved stream of mutation
//     batches and query bursts against one service. Query bursts pin a
//     snapshot and hold it for a random number of events (the
//     delayed-release deque), so reads serve stale generations exactly the
//     way a real reader pool would; staleness is measured in generations
//     behind the writer. Latencies feed p50/p99 time_ms metrics; the warm
//     recompute-volume counters feed `warm_volume_certificate_ok`: batches
//     touching ≪1% of the edges must replay ≤10% of the dense-sweep
//     volume. Volume locality needs converging dynamics, so the workload is
//     a low-arboricity forest union with capacity slack (once levels
//     settle, the tape is quiescent and the active cone stops growing).
//
// All counters are seed-deterministic and thread-count invariant; the JSON
// baseline is compared with zero drift tolerance (see
// scripts/update_baselines.sh).
#include "bench_common.hpp"
#include "bench_json.hpp"

#include "serve/mutation.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "util/cli.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace {

using namespace mpcalloc;
using namespace mpcalloc::bench;

// Deterministic mutation batch: a few removes sampled from the live edge
// list, adds into random non-edges, and capacity retargets. ~10 ops per
// batch — ≪1% of the ~20k edges below.
serve::MutationSet make_batch(const AllocationInstance& instance,
                              Xoshiro256pp& rng) {
  const auto edges = instance.graph.edges();
  serve::MutationSet batch;
  for (std::size_t i = 0; i < 4 && !edges.empty(); ++i) {
    const Edge e = edges[rng.uniform(edges.size())];
    if (std::find(batch.remove_edges.begin(), batch.remove_edges.end(), e) ==
        batch.remove_edges.end()) {
      batch.remove_edges.push_back(e);
    }
  }
  for (std::size_t i = 0; i < 4; ++i) {
    const auto u = static_cast<Vertex>(rng.uniform(instance.graph.num_left()));
    const auto v = static_cast<Vertex>(rng.uniform(instance.graph.num_right()));
    const Edge e{u, v};
    const auto nbrs = instance.graph.left_neighbors(u);
    const bool exists =
        std::any_of(nbrs.begin(), nbrs.end(),
                    [v](const Incidence& inc) { return inc.to == v; });
    const bool removed =
        std::find(batch.remove_edges.begin(), batch.remove_edges.end(), e) !=
        batch.remove_edges.end();
    const bool queued =
        std::find(batch.add_edges.begin(), batch.add_edges.end(), e) !=
        batch.add_edges.end();
    if ((!exists || removed) && !queued) batch.add_edges.push_back(e);
  }
  for (std::size_t i = 0; i < 2; ++i) {
    const auto v = static_cast<Vertex>(rng.uniform(instance.graph.num_right()));
    batch.set_capacities.push_back(
        {v, static_cast<std::uint32_t>(4 + rng.uniform(5))});
  }
  return batch;
}

bool bitwise_equal(const SolveResult& a, const SolveResult& b) {
  return a.final_levels == b.final_levels && a.final_alloc == b.final_alloc &&
         a.allocation.x == b.allocation.x && a.match_weight == b.match_weight &&
         a.rounds_executed == b.rounds_executed;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

AllocationInstance serving_instance(std::uint64_t seed) {
  // Forest union (λ ≤ 2) with capacity slack: the proportional dynamics
  // converge well inside τ rounds, which is what makes warm-restart volume
  // local (see file comment).
  Xoshiro256pp rng(seed);
  AllocationInstance instance;
  instance.graph = union_of_forests(12000, 6000, /*lambda=*/2, rng);
  instance.capacities = uniform_capacities(6000, 4, 8, rng);
  return instance;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpcalloc;
  using namespace mpcalloc::bench;

  CliParser cli("E8: always-on serving — warm-restart identity and traffic replay");
  cli.option("json", "", "write machine-readable metrics JSON to this path");
  cli.option("events", "400", "traffic events in the replay phase");
  cli.threads_option();
  if (!cli.parse(argc, argv)) return 0;
  const auto threads = static_cast<std::size_t>(cli.get_size("threads"));
  const auto num_events = static_cast<std::size_t>(cli.get_size("events"));

  print_preamble(
      "E8: always-on serving",
      "Warm-restarted generations are bitwise identical to cold solves at "
      "every thread count; small batches replay a small fraction of the "
      "dense sweep; readers stay pinned to consistent generations");

  JsonMetrics metrics("bench_serving");
  metrics.set_counter_tolerance(0.0);
  WallTimer total_timer;

  serve::ServiceOptions base_options;
  base_options.solve.method = SolveMethod::kTwoPlusEps;
  base_options.solve.epsilon = 0.25;
  base_options.solve.lambda = 2.0;

  // ---- Phase 1: lockstep identity sweep across thread counts ------------
  const std::size_t kThreadSweep[] = {1, 2, 4, 7};
  std::vector<std::unique_ptr<serve::AllocationService>> services;
  for (const std::size_t t : kThreadSweep) {
    serve::ServiceOptions options = base_options;
    options.solve.num_threads = t;
    services.push_back(std::make_unique<serve::AllocationService>(
        serving_instance(101), options));
  }

  bool all_identical = true;
  Xoshiro256pp stream_rng(2025);
  const std::size_t kIdentityBatches = 8;
  Table identity_table(
      "lockstep identity: one mutation stream, services at 1/2/4/7 threads; "
      "each generation vs a cold 1-thread facade solve");
  identity_table.header({"gen", "edges", "warm", "divergences",
                         "recompute", "vs cold", "across threads"});
  for (std::size_t b = 0; b < kIdentityBatches; ++b) {
    const serve::MutationSet batch =
        make_batch(services[0]->snapshot()->instance(), stream_rng);
    std::vector<std::shared_ptr<const serve::AllocationSnapshot>> snaps;
    for (auto& service : services) snaps.push_back(service->apply(batch));

    SolveOptions cold = base_options.solve;
    cold.num_threads = 1;
    const SolveResult cold_result =
        Solver(cold).solve(snaps[0]->instance());
    const bool vs_cold = bitwise_equal(cold_result, snaps[0]->result());
    bool across = true;
    for (std::size_t i = 1; i < snaps.size(); ++i) {
      across = across && bitwise_equal(snaps[0]->result(), snaps[i]->result());
    }
    all_identical = all_identical && vs_cold && across;

    identity_table.row(
        {Table::integer(static_cast<long long>(snaps[0]->generation())),
         Table::integer(
             static_cast<long long>(snaps[0]->instance().graph.num_edges())),
         snaps[0]->warm().used ? "yes" : "NO",
         Table::integer(
             static_cast<long long>(snaps[0]->warm().divergences)),
         Table::integer(
             static_cast<long long>(snaps[0]->warm().recompute_volume)),
         vs_cold ? "bitwise" : "DIFFERS",
         across ? "bitwise" : "DIFFERS"});
  }
  identity_table.print(std::cout);
  for (auto& service : services) {
    all_identical =
        all_identical && service->counters().warm_restarts == kIdentityBatches;
  }
  metrics.counter("identity_generations",
                  static_cast<double>(kIdentityBatches));

  // ---- Phase 2: Poisson-interleaved traffic replay ----------------------
  serve::ServiceOptions traffic_options = base_options;
  traffic_options.solve.num_threads = threads;
  serve::AllocationService service(serving_instance(101), traffic_options);
  const std::size_t base_edges = service.snapshot()->instance().graph.num_edges();

  Xoshiro256pp traffic_rng(777);
  std::vector<double> query_latencies;
  std::vector<double> mutation_latencies;
  // Delayed-release reader pool: each query burst pins the current
  // generation and holds it for a geometric number of events, so later
  // bursts read through genuinely stale snapshots.
  struct PinnedReader {
    std::shared_ptr<const serve::AllocationSnapshot> snapshot;
    std::size_t release_at = 0;
  };
  std::deque<PinnedReader> readers;
  std::uint64_t staleness_sum = 0;
  std::uint64_t staleness_max = 0;
  std::uint64_t queries_served = 0;
  std::size_t mutation_events = 0;
  double query_checksum = 0.0;

  for (std::size_t event = 0; event < num_events; ++event) {
    while (!readers.empty() && readers.front().release_at <= event) {
      readers.pop_front();
    }
    if (traffic_rng.uniform_double() < 0.08) {
      // Mutation arrival.
      const serve::MutationSet batch =
          make_batch(service.snapshot()->instance(), traffic_rng);
      WallTimer timer;
      (void)service.apply(batch);
      mutation_latencies.push_back(timer.millis());
      ++mutation_events;
    } else {
      // Query burst of 64 point reads, served from a pinned snapshot: a
      // fresh pin plus the oldest still-held reader (the stale path).
      WallTimer timer;
      auto fresh = service.snapshot();
      readers.push_back(
          {fresh, event + 1 + static_cast<std::size_t>(
                                  traffic_rng.uniform(24))});
      const auto& stale = readers.front().snapshot;
      std::vector<Vertex> burst(64);
      for (auto& v : burst) {
        v = static_cast<Vertex>(
            traffic_rng.uniform(stale->instance().graph.num_right()));
      }
      const std::vector<double> loads = stale->query_allocations(burst);
      for (const double load : loads) query_checksum += load;
      query_checksum += stale->marginal_value(burst[0]);
      query_latencies.push_back(timer.millis());
      queries_served += burst.size();

      const std::uint64_t staleness =
          service.generation() - stale->generation();
      staleness_sum += staleness;
      staleness_max = std::max(staleness_max, staleness);
    }
  }

  const serve::ServiceCounters counters = service.counters();
  const auto& warm_total = counters;
  const double recompute_fraction =
      counters.warm_dense_equiv_volume == 0
          ? 0.0
          : static_cast<double>(counters.warm_recompute_volume) /
                static_cast<double>(counters.warm_dense_equiv_volume);
  const bool volume_ok =
      counters.warm_restarts > 0 && recompute_fraction <= 0.10;

  Table traffic_table(
      "traffic replay: " + std::to_string(num_events) +
      " Poisson-interleaved events (8% mutation batches of ~10 ops on " +
      std::to_string(base_edges) + " edges), delayed-release reader pool");
  traffic_table.header({"metric", "value"});
  traffic_table.row({"generations published",
                     Table::integer(static_cast<long long>(
                         counters.generations_published))});
  traffic_table.row({"warm restarts", Table::integer(static_cast<long long>(
                                          counters.warm_restarts))});
  traffic_table.row({"queries served", Table::integer(static_cast<long long>(
                                           queries_served))});
  traffic_table.row(
      {"staleness max (gens)",
       Table::integer(static_cast<long long>(staleness_max))});
  traffic_table.row({"warm recompute volume",
                     Table::integer(static_cast<long long>(
                         counters.warm_recompute_volume))});
  traffic_table.row({"dense-equivalent volume",
                     Table::integer(static_cast<long long>(
                         counters.warm_dense_equiv_volume))});
  traffic_table.row({"recompute fraction",
                     Table::num(recompute_fraction, 4)});
  traffic_table.row({"query p50 / p99 (ms)",
                     Table::num(percentile(query_latencies, 0.50), 3) +
                         " / " +
                         Table::num(percentile(query_latencies, 0.99), 3)});
  traffic_table.row(
      {"mutation p50 / p99 (ms)",
       Table::num(percentile(mutation_latencies, 0.50), 3) + " / " +
           Table::num(percentile(mutation_latencies, 0.99), 3)});
  traffic_table.print(std::cout);

  // Deterministic counters (zero drift tolerance).
  metrics.counter("traffic_events", static_cast<double>(num_events));
  metrics.counter("mutation_events", static_cast<double>(mutation_events));
  metrics.counter("generations_published",
                  static_cast<double>(counters.generations_published));
  metrics.counter("warm_restarts",
                  static_cast<double>(counters.warm_restarts));
  metrics.counter("cold_solves", static_cast<double>(counters.cold_solves));
  metrics.counter("edges_added", static_cast<double>(counters.edges_added));
  metrics.counter("edges_removed",
                  static_cast<double>(counters.edges_removed));
  metrics.counter("capacity_changes",
                  static_cast<double>(counters.capacity_changes));
  metrics.counter("warm_recompute_volume",
                  static_cast<double>(warm_total.warm_recompute_volume));
  metrics.counter("warm_dense_equiv_volume",
                  static_cast<double>(warm_total.warm_dense_equiv_volume));
  metrics.counter("warm_divergences",
                  static_cast<double>(warm_total.warm_divergences));
  metrics.counter("recompute_fraction", recompute_fraction);
  metrics.counter("queries_served", static_cast<double>(queries_served));
  metrics.counter("staleness_sum", static_cast<double>(staleness_sum));
  metrics.counter("staleness_max", static_cast<double>(staleness_max));
  metrics.counter("query_checksum", query_checksum);
  metrics.counter("final_match_weight",
                  service.snapshot()->result().match_weight);

  // Headline gates: compare_bench.py requires exactly 1.0 regardless of
  // the committed baseline.
  metrics.counter("warm_identity_certificate_ok", all_identical ? 1.0 : 0.0);
  metrics.counter("warm_volume_certificate_ok", volume_ok ? 1.0 : 0.0);

  std::cout << "\nShape check: every identity cell must read 'bitwise' and "
               "the recompute fraction must stay ≤ 0.10 — small batches on "
               "a converging instance replay only the perturbed cone.\n";

  metrics.time_ms("query_p50_ms", percentile(query_latencies, 0.50));
  metrics.time_ms("query_p99_ms", percentile(query_latencies, 0.99));
  metrics.time_ms("mutation_p50_ms", percentile(mutation_latencies, 0.50));
  metrics.time_ms("mutation_p99_ms", percentile(mutation_latencies, 0.99));
  metrics.time_ms("total_ms", total_timer.millis());
  if (const std::string json_path = cli.get("json"); !json_path.empty()) {
    metrics.write(json_path);
    std::cout << "\nmetrics written to " << json_path << "\n";
  }
  return all_identical && volume_ok ? 0 : 1;
}
