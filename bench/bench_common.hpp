// Shared helpers for the experiment harness (bench/bench_*.cpp).
//
// Every binary prints one or more tables matching a row of the experiment
// index in DESIGN.md §3; EXPERIMENTS.md records the measured outputs.
#pragma once

#include "alloc/api.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

#include <cstdint>
#include <iostream>
#include <string>

namespace mpcalloc::bench {

/// Standard experiment instance: union-of-forests topology (λ controlled by
/// construction) with uniform capacities in [1, cap_hi].
inline AllocationInstance standard_instance(std::size_t num_left,
                                            std::size_t num_right,
                                            std::uint32_t lambda,
                                            std::uint32_t cap_hi,
                                            std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  AllocationInstance instance;
  instance.graph = union_of_forests(num_left, num_right, lambda, rng);
  instance.capacities = cap_hi <= 1
                            ? unit_capacities(num_right)
                            : uniform_capacities(num_right, 1, cap_hi, rng);
  return instance;
}

inline void print_preamble(const std::string& experiment_id,
                           const std::string& claim) {
  std::cout << "\n=============================================================\n"
            << experiment_id << "\n" << claim << "\n"
            << "=============================================================\n";
}

}  // namespace mpcalloc::bench
