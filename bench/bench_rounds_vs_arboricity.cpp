// E1 — Theorem 2/9: Algorithm 1 converges to a (2+10ε)-approximation within
// τ = log_{1+ε}(4λ/ε)+1 rounds, i.e. rounds scale with log λ, not log n.
//
// Table A uses the adversarial oversubscribed-core gadget on which the
// bound is tight: a K_{4c,c} unit-capacity core drowns the proportional
// weights, and the multiplicative updates need Θ(log_{1+ε} c) rounds before
// the private partners absorb the load. The adaptive (λ-oblivious)
// certificate round is reported next to the theoretical budget τ(λ) and
// the true ratio against Dinic OPT; the log2-fit slope at the end is the
// per-doubling round increment (paper: ≈ ½·log_{1+ε} 2 levels of gap per
// round ⇒ ≈ 1.55 rounds per doubling at ε = 0.25).
//
// Table B repeats the sweep on benign random union-of-forest instances,
// where the certificate fires after O(1) rounds — the bound is an upper
// bound, and easy inputs converge much faster.
#include "bench_common.hpp"

#include <vector>

int main() {
  using namespace mpcalloc;
  using namespace mpcalloc::bench;

  const double eps = 0.25;

  print_preamble("E1: rounds-to-certificate vs arboricity",
                 "Theorem 9: tau = log_{1+eps}(4*lambda/eps)+1 rounds suffice; "
                 "rounds grow with log(lambda) on worst-case instances");

  Table hard("A: oversubscribed-core gadget (load 4x, unit caps), eps=0.25");
  hard.header({"core c", "lambda lb", "tau(lambda)", "adaptive rounds",
               "ratio (frac)", "bound 2+10e", "certified"});
  std::vector<double> xs, ys;
  for (const std::size_t core : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const AllocationInstance instance =
        oversubscribed_core_instance(core, 4, 1);
    const ArboricityEstimate est = estimate_arboricity(instance.graph);
    const ProportionalResult result = solve_adaptive(instance, eps);
    const double ratio = fractional_ratio(instance, result.allocation);
    xs.push_back(static_cast<double>(est.lower_bound));
    ys.push_back(static_cast<double>(result.rounds_executed));
    hard.row({Table::integer(static_cast<long long>(core)),
              Table::integer(est.lower_bound),
              Table::integer(static_cast<long long>(
                  tau_for_arboricity(est.lower_bound, eps))),
              Table::integer(static_cast<long long>(result.rounds_executed)),
              Table::num(ratio, 3), Table::num(2.0 + 10.0 * eps, 2),
              result.stopped_by_condition ? "yes" : "NO"});
  }
  hard.print(std::cout);
  const LinearFit fit = log2_fit(xs, ys);
  std::cout << "\nlog2 fit (gadget): rounds = " << Table::num(fit.intercept, 2)
            << " + " << Table::num(fit.slope, 2)
            << " * log2(lambda)   (r^2 = " << Table::num(fit.r2, 3) << ")\n"
            << "Paper's budget slope: " << Table::num(
                   std::log(2.0) / std::log1p(eps), 2)
            << " per doubling; the gadget needs about half of it (the "
               "core/private level gap widens by 2 per round).\n";

  Table easy("B: benign union-of-forests, n_L=6000, n_R=2400, caps U[1,6]");
  easy.header({"lambda", "tau(lambda)", "adaptive rounds", "ratio (frac)"});
  for (const std::uint32_t lambda : {1u, 4u, 16u, 64u, 256u}) {
    std::vector<double> rounds, ratios;
    for (const std::uint64_t seed : {101ull, 202ull, 303ull}) {
      const AllocationInstance instance =
          standard_instance(6000, 2400, lambda, 6, seed);
      const ProportionalResult result = solve_adaptive(instance, eps);
      rounds.push_back(static_cast<double>(result.rounds_executed));
      ratios.push_back(fractional_ratio(instance, result.allocation));
    }
    easy.row({Table::integer(lambda),
              Table::integer(static_cast<long long>(
                  tau_for_arboricity(lambda, eps))),
              mean_pm_std(summarize(rounds), 1),
              Table::num(summarize(ratios).max, 3)});
  }
  easy.print(std::cout);
  std::cout << "\nShape check: Table A grows ~log2(lambda) and every row is "
               "certified within budget; Table B shows benign instances "
               "finish in O(1) rounds regardless of lambda.\n";
  return 0;
}
