// E8 — Appendix B / Theorem 1: boosting a constant-factor allocation to
// (1+ε).
//
// Table A: the deterministic walk-length booster — ratio vs max walk length
// 2k+1, verifying the (k+1)/(k+2) guarantee and showing the 1+ε knee.
// Table B: the randomized GGM22 layered-graph booster — ratio vs iteration
// budget, showing convergence towards the deterministic certificate.
// `--json=PATH` emits the seed-deterministic ratio/effort counters for the
// CI perf gate.
#include "bench_common.hpp"
#include "bench_json.hpp"

#include "util/cli.hpp"

#include <vector>

int main(int argc, char** argv) {
  using namespace mpcalloc;
  using namespace mpcalloc::bench;

  CliParser cli("E8: boosting 2+eps -> 1+eps (Appendix B)");
  cli.option("json", "", "write machine-readable metrics JSON to this path");
  if (!cli.parse(argc, argv)) return 0;

  // Sparse Erdős–Rényi with unit capacities: greedy strands ~20% of OPT
  // behind length-3+ augmenting walks, so the boosting curve is visible.
  Xoshiro256pp gen_rng(77);
  AllocationInstance instance;
  instance.graph = erdos_renyi_bipartite(3000, 3000, 9000, gen_rng);
  instance.capacities = unit_capacities(3000);
  const CertifiedOptimum certified = certified_optimal_value(instance);
  const auto opt = certified.value;
  const IntegralAllocation seed = greedy_allocation(instance);
  const double seed_ratio =
      approximation_ratio(opt, static_cast<double>(seed.size()));

  print_preamble("E8: boosting 2+eps -> 1+eps (Appendix B)",
                 "OPT = " + std::to_string(opt) + " (min-cut witness " +
                     std::to_string(certified.cut_capacity) +
                     "), greedy seed ratio = " + Table::num(seed_ratio, 4));

  JsonMetrics metrics("bench_boosting");
  WallTimer total_timer;
  metrics.counter("opt", static_cast<double>(opt));
  metrics.counter("min_cut", static_cast<double>(certified.cut_capacity));
  metrics.counter("certificate_ok", certified.certificate_ok ? 1.0 : 0.0);
  metrics.counter("greedy_seed_ratio", seed_ratio);

  Table det("deterministic length-bounded booster (certificate)");
  det.header({"walk length 2k+1", "guarantee 1+1/(k+1)", "ratio", "phases",
              "augmentations"});
  for (const std::size_t k : {0u, 1u, 2u, 4u, 9u}) {
    const std::size_t length = 2 * k + 1;
    const BoostResult result = boost_path_limited(instance, seed, length);
    std::size_t total = 0;
    for (const std::size_t a : result.augmentations_per_iteration) total += a;
    const double ratio = approximation_ratio(
        opt, static_cast<double>(result.allocation.size()));
    const std::string prefix = "det_len" + std::to_string(length);
    metrics.counter(prefix + "_ratio", ratio);
    metrics.counter(prefix + "_augmentations", static_cast<double>(total));
    det.row({Table::integer(static_cast<long long>(length)),
             Table::num(1.0 + 1.0 / static_cast<double>(k + 2), 4),
             Table::num(ratio, 4),
             Table::integer(static_cast<long long>(result.iterations)),
             Table::integer(static_cast<long long>(total))});
  }
  det.print(std::cout);

  Table ggm("randomized GGM22 layered booster (eps=0.25, k=4 layers)");
  ggm.header({"iterations", "ratio", "walks found", "seconds"});
  for (const std::size_t iters : {10u, 50u, 200u, 800u}) {
    Xoshiro256pp rng(4242);
    WallTimer timer;
    const BoostResult result = boost_ggm22(instance, seed, 0.25, iters, rng);
    std::size_t walks = 0;
    for (const std::size_t a : result.augmentations_per_iteration) walks += a;
    const double ratio = approximation_ratio(
        opt, static_cast<double>(result.allocation.size()));
    const std::string prefix = "ggm_iters" + std::to_string(iters);
    metrics.counter(prefix + "_ratio", ratio);
    metrics.counter(prefix + "_walks", static_cast<double>(walks));
    ggm.row({Table::integer(static_cast<long long>(iters)),
             Table::num(ratio, 4),
             Table::integer(static_cast<long long>(walks)),
             Table::num(timer.seconds(), 3)});
  }
  ggm.print(std::cout);
  std::cout << "\nShape check: the deterministic ratio column must sit below "
               "its guarantee column and reach ~1+eps by walk length "
               "2*ceil(1/eps)+1; GGM22 approaches the same plateau as the "
               "iteration budget grows (its worst-case bound is exp(O(2^k)) "
               "iterations — vastly pessimistic in practice).\n";

  metrics.time_ms("total_ms", total_timer.millis());
  if (const std::string json_path = cli.get("json"); !json_path.empty()) {
    metrics.write(json_path);
    std::cout << "\nmetrics written to " << json_path << "\n";
  }
  return 0;
}
