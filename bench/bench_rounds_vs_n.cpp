// E2 — the contrast with AZM18's O(log n) analysis: at fixed arboricity the
// convergence round count is flat in n, while the (previously best known)
// τ = O(log(|R|/ε)/ε²) budget keeps growing.
//
// We grow n by replicating the oversubscribed-core gadget (core fixed at
// c = 32, so λ is fixed) and report the adaptive certificate round next to
// Theorem 9's λ-budget (constant) and AZM18's |R|-budget (growing). A
// second table repeats the sweep on random union-of-forest inputs.
// `--json=PATH` emits the round counters (plus the incremental round
// engine's dense/sparse split) for the CI perf gate.
#include "bench_common.hpp"
#include "bench_json.hpp"

#include "util/cli.hpp"

#include <vector>

int main(int argc, char** argv) {
  using namespace mpcalloc;
  using namespace mpcalloc::bench;

  CliParser cli("E2: rounds-to-certificate vs n at fixed arboricity");
  cli.option("json", "", "write machine-readable metrics JSON to this path");
  cli.threads_option();
  if (!cli.parse(argc, argv)) return 0;
  const auto threads = static_cast<std::size_t>(cli.get_size("threads"));

  const double eps = 0.25;
  const std::size_t core = 32;

  print_preamble("E2: rounds-to-certificate vs n at fixed arboricity",
                 "Theorem 2 vs AZM18: O(log lambda) rounds are n-independent; "
                 "the O(log n / eps^2) budget is not");

  JsonMetrics metrics("bench_rounds_vs_n");
  WallTimer total_timer;

  Table hard("A: replicated oversubscribed-core gadget, core=32 (lambda fixed)");
  hard.header({"copies", "n", "m", "adaptive rounds", "tau(lambda)",
               "tau_AZM18(|R|)", "ratio (frac)"});
  std::vector<double> xs, ys;
  for (const std::size_t copies : {1u, 4u, 16u, 64u, 256u}) {
    const AllocationInstance instance =
        oversubscribed_core_instance(core, 4, copies);
    const ProportionalResult result = solve_adaptive(instance, eps, 0, threads);
    xs.push_back(static_cast<double>(instance.graph.num_vertices()));
    ys.push_back(static_cast<double>(result.rounds_executed));
    metrics.counter("gadget_c" + std::to_string(copies) + "_adaptive_rounds",
                    static_cast<double>(result.rounds_executed));
    hard.row(
        {Table::integer(static_cast<long long>(copies)),
         Table::integer(static_cast<long long>(instance.graph.num_vertices())),
         Table::integer(static_cast<long long>(instance.graph.num_edges())),
         Table::integer(static_cast<long long>(result.rounds_executed)),
         Table::integer(static_cast<long long>(tau_for_arboricity(
             static_cast<double>(core) / 2.0, eps))),
         Table::integer(static_cast<long long>(
             tau_for_one_plus_eps(instance.graph.num_right(), eps))),
         Table::num(fractional_ratio(instance, result.allocation), 3)});
  }
  hard.print(std::cout);
  const LinearFit fit = log2_fit(xs, ys);
  std::cout << "\nlog2 fit (gadget): rounds = " << Table::num(fit.intercept, 2)
            << " + " << Table::num(fit.slope, 2)
            << " * log2(n); Theorem 2 predicts slope ~ 0.\n";
  metrics.counter("gadget_log2_fit_slope", fit.slope);

  Table easy("B: union-of-forests, lambda=4, caps U[1,5], 2 seeds");
  easy.header({"n_L", "adaptive rounds", "tau_AZM18(|R|)", "ratio (frac)"});
  for (const std::size_t n : {500u, 2000u, 8000u, 32000u}) {
    std::vector<double> rounds, ratios;
    for (const std::uint64_t seed : {7ull, 77ull}) {
      const AllocationInstance instance =
          standard_instance(n, n / 2, 4, 5, seed);
      const ProportionalResult result = solve_adaptive(instance, eps, 0, threads);
      rounds.push_back(static_cast<double>(result.rounds_executed));
      ratios.push_back(fractional_ratio(instance, result.allocation));
      if (seed == 7ull) {
        const std::string prefix = "forest_n" + std::to_string(n);
        metrics.counter(prefix + "_adaptive_rounds",
                        static_cast<double>(result.rounds_executed));
        // The round engine's dense/sparse split: deterministic counters
        // that pin the frontier-driven work partition per instance.
        metrics.counter(prefix + "_sparse_rounds",
                        static_cast<double>(result.stats.sparse_rounds));
        metrics.counter(prefix + "_dense_rounds",
                        static_cast<double>(result.stats.dense_rounds));
        metrics.counter(
            prefix + "_recomputed_right_total",
            static_cast<double>(result.stats.recomputed_right_total));
      }
    }
    easy.row({Table::integer(static_cast<long long>(n)),
              mean_pm_std(summarize(rounds), 1),
              Table::integer(static_cast<long long>(
                  tau_for_one_plus_eps(n / 2, eps))),
              Table::num(summarize(ratios).max, 3)});
  }
  easy.print(std::cout);
  std::cout << "\nShape check: the adaptive-rounds columns stay flat across "
               "a 256x growth in n while the AZM18 budget grows with log n.\n";

  metrics.time_ms("total_ms", total_timer.millis());
  if (const std::string json_path = cli.get("json"); !json_path.empty()) {
    metrics.write(json_path);
    std::cout << "\nmetrics written to " << json_path << "\n";
  }
  return 0;
}
