// E10 — Section 3.2.2: running without knowing λ costs only a constant
// factor. Trial i guesses √(log λ_i) = 2^i and doubles on failure of the
// Section-4 termination test.
#include "bench_common.hpp"

#include <vector>

int main() {
  using namespace mpcalloc;
  using namespace mpcalloc::bench;

  const double eps = 0.25;
  const std::vector<std::uint32_t> degrees{4, 8, 16, 32};

  print_preamble("E10: lambda-oblivious doubling vs known lambda",
                 "Section 3.2.2: guessing sqrt(log lambda_i) = 2^i costs a "
                 "constant factor over the known-lambda run");

  Table table("left-regular L=R=1600 (lambda ~ d/2), alpha=0.8, eps=0.25");
  table.header({"degree", "known-l MPC rounds", "oblivious MPC rounds",
                "overhead", "trials", "certified", "ratio"});

  for (const std::uint32_t lambda : degrees) {
    Xoshiro256pp gen_rng(700 + lambda);
    AllocationInstance instance;
    instance.graph = left_regular(1600, 1600, lambda, gen_rng);
    instance.capacities = uniform_capacities(1600, 1, 5, gen_rng);

    MpcDriverConfig config;
    config.epsilon = eps;
    config.alpha = 0.8;
    config.samples_per_group = 4;
    config.seed = 5;

    MpcDriverConfig known = config;
    known.lambda = lambda;
    known.adaptive_termination = true;
    const MpcRunResult with_lambda = run_mpc_phased(instance, known);
    const MpcRunResult oblivious = run_mpc_unknown_lambda(instance, config);

    table.row(
        {Table::integer(lambda),
         Table::integer(static_cast<long long>(with_lambda.mpc_rounds)),
         Table::integer(static_cast<long long>(oblivious.mpc_rounds)),
         Table::num(static_cast<double>(oblivious.mpc_rounds) /
                        static_cast<double>(std::max<std::size_t>(
                            with_lambda.mpc_rounds, 1)),
                    2),
         Table::integer(static_cast<long long>(oblivious.trials)),
         oblivious.stopped_by_condition ? "yes" : "NO",
         Table::num(fractional_ratio(instance, oblivious.allocation), 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: the overhead column stays a small constant "
               "(here exactly 1: the smallest guess lambda_1 = 16 already "
               "budgets tau(16) = 26 rounds, and with the per-phase "
               "certificate every laptop-scale instance converges inside "
               "trial 1 — failing trials need lambda beyond the 2^(4^i) "
               "guess schedule's first rungs), and every run ends with the "
               "Section-4 certificate.\n";
  return 0;
}
