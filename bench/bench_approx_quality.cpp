// E3 — approximation quality vs round budget and ε (Theorems 9 and 20).
//
// Table A: fractional ratio as a function of the round budget, for several
// ε, on a fixed instance — showing the 2+O(ε) plateau arriving at
// τ ≈ log_{1+ε}(4λ/ε) and the slow drift towards 1+O(ε) afterwards.
// Table B: the full integral pipeline (round → maximal → boost) per ε.
// All ratios divide by the *certified* optimum (max-flow value backed by a
// min-cut witness). `--json=PATH` emits the seed-deterministic ratio
// counters plus the certificate fields for the CI perf gate, which fails
// the run if `certificate_ok` is not 1.
#include "bench_common.hpp"
#include "bench_json.hpp"

#include "util/cli.hpp"

#include <vector>

int main(int argc, char** argv) {
  using namespace mpcalloc;
  using namespace mpcalloc::bench;

  CliParser cli("E3: approximation ratio vs round budget and epsilon");
  cli.option("json", "", "write machine-readable metrics JSON to this path");
  if (!cli.parse(argc, argv)) return 0;

  const std::uint32_t lambda = 8;
  const AllocationInstance instance = standard_instance(4000, 1600, lambda, 5, 42);
  const CertifiedOptimum certified = certified_optimal_value(instance);
  const auto opt = certified.value;

  print_preamble("E3: approximation ratio vs round budget and epsilon",
                 "Theorem 9: ratio <= 2+10eps after tau(lambda) rounds; "
                 "Theorem 20: ratio -> 1+18eps for tau = O(log(|R|)/eps^2). "
                 "OPT = " + std::to_string(opt) + " (min-cut witness " +
                     std::to_string(certified.cut_capacity) + ")");

  JsonMetrics metrics("bench_approx_quality");
  WallTimer total_timer;
  metrics.counter("opt", static_cast<double>(opt));
  metrics.counter("min_cut", static_cast<double>(certified.cut_capacity));
  metrics.counter("certificate_ok", certified.certificate_ok ? 1.0 : 0.0);

  const auto eps_tag = [](double eps) {
    return std::to_string(static_cast<int>(eps * 100));
  };

  Table table_a("fractional ratio vs rounds (lambda=8, n=5600)");
  table_a.header({"eps", "rounds", "tau(lambda)", "ratio", "2+10e bound",
                  "1+18e bound"});
  for (const double eps : {0.5, 0.25, 0.1}) {
    const std::size_t tau = tau_for_arboricity(lambda, eps);
    for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      const auto rounds = static_cast<std::size_t>(
          std::max(1.0, factor * static_cast<double>(tau)));
      ProportionalConfig config;
      config.epsilon = eps;
      config.max_rounds = rounds;
      const ProportionalResult result = run_proportional(instance, config);
      const double ratio =
          approximation_ratio(opt, result.allocation.weight());
      metrics.counter(
          "eps" + eps_tag(eps) + "_r" + std::to_string(rounds) + "_ratio",
          ratio);
      table_a.row({Table::num(eps, 2),
                   Table::integer(static_cast<long long>(rounds)),
                   Table::integer(static_cast<long long>(tau)),
                   Table::num(ratio, 4),
                   Table::num(2.0 + 10.0 * eps, 2),
                   Table::num(1.0 + 18.0 * eps, 2)});
    }
  }
  table_a.print(std::cout);

  Table table_b("integral pipeline: fractional -> round -> maximal -> boost");
  table_b.header({"eps", "frac ratio", "rounded ratio", "maximal ratio",
                  "boosted ratio", "1+eps target"});
  for (const double eps : {0.5, 0.25, 0.1}) {
    Xoshiro256pp rng(1000 + static_cast<std::uint64_t>(eps * 100));
    const ProportionalResult frac = solve_two_plus_eps(instance, lambda, eps);
    BestOfRoundingResult rounded =
        round_best_of(instance, frac.allocation, rng);
    const double frac_ratio =
        approximation_ratio(opt, frac.allocation.weight());
    const double rounded_ratio =
        approximation_ratio(opt, static_cast<double>(rounded.best.size()));
    make_maximal(instance, rounded.best);
    const double maximal_ratio =
        approximation_ratio(opt, static_cast<double>(rounded.best.size()));
    const BoostResult boosted =
        boost_to_one_plus_eps(instance, rounded.best, eps);
    const double boosted_ratio = approximation_ratio(
        opt, static_cast<double>(boosted.allocation.size()));
    const std::string prefix = "eps" + eps_tag(eps);
    metrics.counter(prefix + "_frac_ratio", frac_ratio);
    metrics.counter(prefix + "_rounded_ratio", rounded_ratio);
    metrics.counter(prefix + "_maximal_ratio", maximal_ratio);
    metrics.counter(prefix + "_boosted_ratio", boosted_ratio);
    table_b.row({Table::num(eps, 2), Table::num(frac_ratio, 4),
                 Table::num(rounded_ratio, 4), Table::num(maximal_ratio, 4),
                 Table::num(boosted_ratio, 4), Table::num(1.0 + eps, 2)});
  }
  table_b.print(std::cout);

  metrics.time_ms("total_ms", total_timer.millis());
  if (const std::string json_path = cli.get("json"); !json_path.empty()) {
    metrics.write(json_path);
    std::cout << "\nmetrics written to " << json_path << "\n";
  }
  return 0;
}
