// E7 — fault-tolerant runtime: a faulted naive-driver run (deterministic
// keyed injection: forced worker crash + probabilistic transient faults)
// must reproduce the fault-free run bitwise — same allocation, same model
// counters (rounds, words moved, peak words) — with all recovery overhead
// accounted separately on MpcRunResult::recovery.
//
// Columns sweep the checkpoint cadence k (checkpoint every k LOCAL rounds):
// sparser checkpoints are cheaper fault-free but replay more rounds per
// restore. The `recovery_identity_certificate_ok` counter is the headline
// invariant and gates CI at exactly 1.0; the overhead counters are exact
// (seed-deterministic) and compared with zero tolerance.
//
// A second micro-table exercises OverflowPolicy::kSplitExchange: an
// over-budget send (stuffed at arena level — legal scatters cannot create
// it, but future backends can) is delivered in honestly-charged sub-rounds
// instead of failing rule 1.
#include "bench_common.hpp"
#include "bench_json.hpp"

#include "mpc/cluster.hpp"
#include "util/cli.hpp"

#include <string>
#include <vector>

int main(int argc, char** argv) {
  using namespace mpcalloc;
  using namespace mpcalloc::bench;

  CliParser cli("E7: fault recovery identity and overhead");
  cli.option("json", "", "write machine-readable metrics JSON to this path");
  cli.threads_option();
  cli.transport_option();
  if (!cli.parse(argc, argv)) return 0;
  const auto threads = static_cast<std::size_t>(cli.get_size("threads"));
  const mpc::TransportKind transport =
      mpc::transport_kind_from_cli(cli.get("transport"));

  print_preamble("E7: fault recovery identity and overhead",
                 "Recovered runs are bitwise identical to fault-free runs; "
                 "retries, restores and replayed rounds are charged to a "
                 "separate recovery ledger");

  JsonMetrics metrics("bench_fault_recovery");
  // Every counter here is an exact model quantity or a deterministic
  // function of the fault key — bitwise reproducible, zero slack.
  metrics.set_counter_tolerance(0.0);
  WallTimer total_timer;

  Xoshiro256pp rng(77);
  AllocationInstance instance;
  instance.graph = left_regular(400, 400, 8, rng);
  instance.capacities = uniform_capacities(400, 1, 4, rng);

  MpcDriverConfig base;
  base.epsilon = 0.25;
  base.lambda = 4.0;
  base.seed = 9;
  base.num_threads = threads;
  base.transport = transport;

  const MpcRunResult reference = run_mpc_naive(instance, base);
  metrics.counter("reference_mpc_rounds",
                  static_cast<double>(reference.mpc_rounds));
  metrics.counter("reference_words_moved",
                  static_cast<double>(reference.words_moved));

  Table table(
      "left-regular L=R=400 deg 8, caps U[1,4]; forced crash at exchange #3, "
      "partial delivery at #7 + transient faults at p=0.05 (key 0xC0FFEE)");
  table.header({"ckpt every", "faults", "retries", "restores", "replayed rd",
                "backoff rd", "restored words", "bitwise identical"});

  bool all_identical = true;
  for (const std::size_t cadence : {std::size_t{1}, std::size_t{4}}) {
    MpcDriverConfig faulted = base;
    faulted.fault_plan.key = 0xC0FFEEULL;
    faulted.fault_plan.fault_probability = 0.05;
    faulted.fault_plan.forced = {
        mpc::FaultEvent{3, mpc::FaultKind::kWorkerCrash, 1},
        mpc::FaultEvent{7, mpc::FaultKind::kPartialDelivery, 1}};
    faulted.checkpoint_every = cadence;
    const MpcRunResult run = run_mpc_naive(instance, faulted);

    const bool identical =
        run.allocation.x == reference.allocation.x &&
        run.match_weight == reference.match_weight &&
        run.local_rounds == reference.local_rounds &&
        run.mpc_rounds == reference.mpc_rounds &&
        run.words_moved == reference.words_moved &&
        run.peak_machine_words == reference.peak_machine_words &&
        run.peak_total_words == reference.peak_total_words &&
        run.host_record_updates == reference.host_record_updates;
    all_identical = all_identical && identical;

    const mpc::MpcRecoveryStats& rec = run.recovery;
    table.row({Table::integer(static_cast<long long>(cadence)),
               Table::integer(static_cast<long long>(rec.faults_injected)),
               Table::integer(static_cast<long long>(rec.exchange_retries)),
               Table::integer(static_cast<long long>(rec.checkpoint_restores)),
               Table::integer(static_cast<long long>(rec.replayed_rounds)),
               Table::integer(static_cast<long long>(rec.backoff_rounds)),
               Table::integer(static_cast<long long>(rec.restored_words)),
               identical ? "yes" : "NO"});

    const std::string suffix = "_k" + std::to_string(cadence);
    metrics.counter("faults_injected" + suffix,
                    static_cast<double>(rec.faults_injected));
    metrics.counter("exchange_retries" + suffix,
                    static_cast<double>(rec.exchange_retries));
    metrics.counter("checkpoint_restores" + suffix,
                    static_cast<double>(rec.checkpoint_restores));
    metrics.counter("replayed_rounds" + suffix,
                    static_cast<double>(rec.replayed_rounds));
    metrics.counter("backoff_rounds" + suffix,
                    static_cast<double>(rec.backoff_rounds));
    metrics.counter("checkpoints_taken" + suffix,
                    static_cast<double>(rec.checkpoints_taken));
  }
  table.print(std::cout);

  // Process-backend column: the same identity contract with a *real* fault —
  // a forked worker process SIGKILLed at exchange #3. The coordinator reaps
  // it, wipes the dead machine's arenas, re-forks, and the driver's
  // checkpoint-restore tier replays; the result must still be bitwise
  // identical to the (in-process, fault-free) reference. Every counter here
  // is deterministic: the kill fires exactly once at a fixed ordinal.
  {
    MpcDriverConfig killed = base;
    killed.transport = mpc::TransportKind::kProcess;
    killed.process_options.kill_script = {
        mpc::ProcessKill{/*exchange_index=*/3, /*signo=*/9, /*worker=*/1}};
    killed.checkpoint_every = 1;
    const MpcRunResult run = run_mpc_naive(instance, killed);

    const bool identical =
        run.allocation.x == reference.allocation.x &&
        run.match_weight == reference.match_weight &&
        run.local_rounds == reference.local_rounds &&
        run.mpc_rounds == reference.mpc_rounds &&
        run.words_moved == reference.words_moved &&
        run.peak_machine_words == reference.peak_machine_words &&
        run.peak_total_words == reference.peak_total_words &&
        run.host_record_updates == reference.host_record_updates;

    const mpc::MpcRecoveryStats& rec = run.recovery;
    Table process_table(
        "process backend: worker 1 SIGKILLed at exchange #3, ckpt every 1");
    process_table.header({"crashes", "respawns", "restores", "replayed rd",
                          "degradations", "bitwise identical"});
    process_table.row(
        {Table::integer(static_cast<long long>(rec.process_crashes)),
         Table::integer(static_cast<long long>(rec.worker_respawns)),
         Table::integer(static_cast<long long>(rec.checkpoint_restores)),
         Table::integer(static_cast<long long>(rec.replayed_rounds)),
         Table::integer(static_cast<long long>(rec.backend_degradations)),
         identical ? "yes" : "NO"});
    process_table.print(std::cout);

    metrics.counter("process_crashes",
                    static_cast<double>(rec.process_crashes));
    metrics.counter("process_worker_respawns",
                    static_cast<double>(rec.worker_respawns));
    metrics.counter("process_checkpoint_restores",
                    static_cast<double>(rec.checkpoint_restores));
    metrics.counter("process_replayed_rounds",
                    static_cast<double>(rec.replayed_rounds));
    metrics.counter("process_backend_degradations",
                    static_cast<double>(rec.backend_degradations));
    // Gated at exactly 1.0: a real SIGKILL must recover bitwise identical.
    metrics.counter("process_identity_certificate_ok", identical ? 1.0 : 0.0);
  }

  // Degradation micro: 10 words on machine 0 of a (3 machines, S = 8)
  // cluster all move at once — rule 1 would fire; kSplitExchange proves a
  // 2-wave schedule and charges 2 rounds for the one exchange.
  mpc::Cluster cluster(3, 8, 1);
  cluster.set_overflow_policy(mpc::OverflowPolicy::kSplitExchange);
  mpc::DistVec over = cluster.workers().create_dist(1);
  over.shard(0).assign(10, 7);
  std::vector<std::uint32_t> dest(10);
  for (std::size_t i = 0; i < 10; ++i) dest[i] = i < 5 ? 1 : 2;
  cluster.shuffle(over, dest);

  Table split_table("kSplitExchange micro: 10 words through S = 8");
  split_table.header({"rounds charged", "split exchanges", "extra rounds"});
  split_table.row(
      {Table::integer(static_cast<long long>(cluster.rounds())),
       Table::integer(
           static_cast<long long>(cluster.recovery_stats().split_exchanges)),
       Table::integer(static_cast<long long>(
           cluster.recovery_stats().split_extra_rounds))});
  split_table.print(std::cout);

  metrics.counter("split_rounds_charged",
                  static_cast<double>(cluster.rounds()));
  metrics.counter(
      "split_extra_rounds",
      static_cast<double>(cluster.recovery_stats().split_extra_rounds));

  // The headline invariant, gated at exactly 1.0 by compare_bench.py.
  metrics.counter("recovery_identity_certificate_ok",
                  all_identical ? 1.0 : 0.0);

  std::cout << "\nShape check: every 'bitwise identical' cell must read yes "
               "— recovery replays the exact record streams, so the model "
               "counters cannot tell a faulted run from a clean one; only "
               "the recovery ledger grows.\n";

  metrics.time_ms("total_sweep_ms", total_timer.millis());
  if (const std::string json_path = cli.get("json"); !json_path.empty()) {
    metrics.write(json_path);
    std::cout << "\nmetrics written to " << json_path << "\n";
  }
  return 0;
}
