// E4 — Lemma 11: s ≥ 20·t²·log n/ε⁴ uniform samples estimate a sum of
// values spread within [V/t, V·t] to within (1 ± 4ε) w.h.p.
//
// Sweep the spread t = (1+ε)^B and the sample count (as a fraction of the
// lemma's prescription); report max relative error and the empirical
// failure rate against the 4ε bound. The lemma's constant is visibly
// conservative: tiny fractions of the prescribed s already concentrate.
#include "bench_common.hpp"

#include <cmath>
#include <numeric>
#include <vector>

int main() {
  using namespace mpcalloc;
  using namespace mpcalloc::bench;

  const double eps = 0.25;
  const std::size_t n = 2000;
  constexpr int kTrials = 400;

  print_preamble("E4: Lemma 11 estimator concentration",
                 "s >= 20 t^2 log(n)/eps^4 samples give |est-sum| <= 4 eps sum "
                 "w.h.p.; eps=0.25, n=2000, 400 trials per row");

  Table table("rescaled-sum estimator error vs spread t and sample count");
  table.header({"B", "t=(1+e)^B", "s (Lemma 11)", "s used", "max rel err",
                "mean rel err", "fail rate vs 4e=1.0"});

  Xoshiro256pp rng(2025);
  for (const std::size_t b : {1u, 2u, 4u}) {
    const double t = std::pow(1.0 + eps, static_cast<double>(b));
    std::vector<double> values(n);
    for (auto& v : values) {
      v = (1.0 / t) * std::pow(t * t, rng.uniform_double());
    }
    const double truth = std::accumulate(values.begin(), values.end(), 0.0);
    const std::size_t s_lemma = lemma11_sample_count(t, eps, n);

    for (const double fraction : {0.001, 0.01, 0.1, 1.0}) {
      const auto s_used = std::max<std::size_t>(
          4, static_cast<std::size_t>(fraction * static_cast<double>(s_lemma)));
      double max_err = 0.0, sum_err = 0.0;
      int failures = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        const double est = estimate_sum(values, s_used, rng).estimate;
        const double rel = std::abs(est - truth) / truth;
        max_err = std::max(max_err, rel);
        sum_err += rel;
        if (rel > 4.0 * eps) ++failures;
      }
      table.row({Table::integer(static_cast<long long>(b)), Table::num(t, 3),
                 Table::integer(static_cast<long long>(s_lemma)),
                 Table::integer(static_cast<long long>(s_used)),
                 Table::num(max_err, 4), Table::num(sum_err / kTrials, 4),
                 Table::pct(static_cast<double>(failures) / kTrials, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: failure rate must be 0 at the full Lemma-11 "
               "sample count, and the error must grow as samples shrink.\n";
  return 0;
}
