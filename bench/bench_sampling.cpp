// E4 — Lemma 11: s ≥ 20·t²·log n/ε⁴ uniform samples estimate a sum of
// values spread within [V/t, V·t] to within (1 ± 4ε) w.h.p.
//
// Sweep the spread t = (1+ε)^B and the sample count (as a fraction of the
// lemma's prescription); report max relative error and the empirical
// failure rate against the 4ε bound. The lemma's constant is visibly
// conservative: tiny fractions of the prescribed s already concentrate.
//
// A second table runs the full sampled executor (Algorithm 2) on a
// standard instance — the per-phase draw + estimation machinery the
// estimator feeds — reporting rounds, samples drawn, and wall time on the
// requested `--threads`. With `--json=PATH` both tables are emitted as
// machine-readable metrics for the CI perf gate.
#include "bench_common.hpp"
#include "bench_json.hpp"

#include "alloc/sampled.hpp"
#include "util/cli.hpp"

#include <cmath>
#include <numeric>
#include <vector>

int main(int argc, char** argv) {
  using namespace mpcalloc;
  using namespace mpcalloc::bench;

  CliParser cli(
      "E4: Lemma 11 estimator concentration + sampled-executor throughput");
  cli.option("json", "", "write machine-readable metrics JSON to this path");
  cli.threads_option();
  if (!cli.parse(argc, argv)) return 0;
  const auto threads = static_cast<std::size_t>(cli.get_size("threads"));

  const double eps = 0.25;
  const std::size_t n = 2000;
  constexpr int kTrials = 400;

  print_preamble("E4: Lemma 11 estimator concentration",
                 "s >= 20 t^2 log(n)/eps^4 samples give |est-sum| <= 4 eps sum "
                 "w.h.p.; eps=0.25, n=2000, 400 trials per row");

  JsonMetrics metrics("bench_sampling");

  Table table("rescaled-sum estimator error vs spread t and sample count");
  table.header({"B", "t=(1+e)^B", "s (Lemma 11)", "s used", "max rel err",
                "mean rel err", "fail rate vs 4e=1.0"});

  Xoshiro256pp rng(2025);
  for (const std::size_t b : {1u, 2u, 4u}) {
    const double t = std::pow(1.0 + eps, static_cast<double>(b));
    std::vector<double> values(n);
    for (auto& v : values) {
      v = (1.0 / t) * std::pow(t * t, rng.uniform_double());
    }
    const double truth = std::accumulate(values.begin(), values.end(), 0.0);
    const std::size_t s_lemma = lemma11_sample_count(t, eps, n);

    for (const double fraction : {0.001, 0.01, 0.1, 1.0}) {
      const auto s_used = std::max<std::size_t>(
          4, static_cast<std::size_t>(fraction * static_cast<double>(s_lemma)));
      double max_err = 0.0, sum_err = 0.0;
      int failures = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        const double est = estimate_sum(values, s_used, rng).estimate;
        const double rel = std::abs(est - truth) / truth;
        max_err = std::max(max_err, rel);
        sum_err += rel;
        if (rel > 4.0 * eps) ++failures;
      }
      table.row({Table::integer(static_cast<long long>(b)), Table::num(t, 3),
                 Table::integer(static_cast<long long>(s_lemma)),
                 Table::integer(static_cast<long long>(s_used)),
                 Table::num(max_err, 4), Table::num(sum_err / kTrials, 4),
                 Table::pct(static_cast<double>(failures) / kTrials, 2)});
      if (fraction == 1.0) {
        // At the full Lemma-11 prescription the failure rate must be 0 and
        // the max error must sit far below the 4ε bound.
        const std::string prefix = "estimator_B" + std::to_string(b);
        metrics.counter(prefix + "_fail_rate_at_lemma_s",
                        static_cast<double>(failures) / kTrials);
        metrics.counter(prefix + "_max_rel_err_at_lemma_s", max_err);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: failure rate must be 0 at the full Lemma-11 "
               "sample count, and the error must grow as samples shrink.\n";

  // ---- Sampled executor throughput (the machinery Lemma 11 feeds).
  print_preamble("E4b: sampled executor (Algorithm 2) throughput",
                 "union-of-forests 20000x8000 lambda=8, B=3, t=8, 15 rounds");
  Table exec_table("run_sampled wall time");
  exec_table.header({"threads", "rounds", "phases", "samples drawn", "ms"});
  const AllocationInstance instance =
      standard_instance(20000, 8000, /*lambda=*/8, /*cap_hi=*/5, /*seed=*/33);
  SampledConfig config;
  config.epsilon = eps;
  config.phase_length = 3;
  config.samples_per_group = 8;
  config.max_rounds = 15;
  config.num_threads = threads;
  Xoshiro256pp exec_rng(44);
  WallTimer timer;
  const SampledResult run = run_sampled(instance, config, exec_rng);
  const double elapsed_ms = timer.millis();
  exec_table.row({Table::integer(static_cast<long long>(
                      resolve_num_threads(threads))),
                  Table::integer(static_cast<long long>(run.rounds_executed)),
                  Table::integer(static_cast<long long>(run.phases_executed)),
                  Table::integer(static_cast<long long>(run.samples_drawn)),
                  Table::num(elapsed_ms, 2)});
  exec_table.print(std::cout);

  metrics.counter("sampled_rounds_executed",
                  static_cast<double>(run.rounds_executed));
  metrics.counter("sampled_samples_drawn",
                  static_cast<double>(run.samples_drawn));
  metrics.counter("sampled_match_weight", run.match_weight);
  metrics.time_ms("sampled_executor_ms", elapsed_ms);

  if (const std::string json_path = cli.get("json"); !json_path.empty()) {
    metrics.write(json_path);
    std::cout << "\nmetrics written to " << json_path << "\n";
  }
  return 0;
}
