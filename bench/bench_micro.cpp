// E11 — engineering micro-benchmarks (google-benchmark): the per-round
// sweep that dominates every driver, the exact-OPT oracle, generators, and
// the degeneracy peel. These are throughput baselines, not paper claims.
#include "alloc/api.hpp"

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace {

using namespace mpcalloc;

AllocationInstance instance_for(std::size_t n_left, std::uint32_t lambda) {
  Xoshiro256pp rng(7);
  AllocationInstance instance;
  instance.graph = union_of_forests(n_left, n_left / 2, lambda, rng);
  instance.capacities = uniform_capacities(n_left / 2, 1, 5, rng);
  return instance;
}

void BM_GeneratorUnionOfForests(benchmark::State& state) {
  Xoshiro256pp rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(union_of_forests(n, n / 2, 8, rng));
  }
}
BENCHMARK(BM_GeneratorUnionOfForests)->Arg(1000)->Arg(10000);

void BM_DegeneracyPeel(benchmark::State& state) {
  const AllocationInstance instance =
      instance_for(static_cast<std::size_t>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_arboricity(instance.graph));
  }
}
BENCHMARK(BM_DegeneracyPeel)->Arg(1000)->Arg(10000);

void BM_ProportionalRound(benchmark::State& state) {
  // One full Algorithm-1 round: left aggregation + alloc + update.
  const AllocationInstance instance =
      instance_for(static_cast<std::size_t>(state.range(0)), 8);
  const PowTable pow_table(0.25);
  std::vector<std::int32_t> levels(instance.graph.num_right(), 0);
  std::size_t round = 1;
  for (auto _ : state) {
    const LeftAggregate left =
        compute_left_aggregate(instance.graph, levels, pow_table);
    const std::vector<double> alloc =
        compute_alloc(instance.graph, levels, left, pow_table);
    apply_level_update(instance, alloc, 0.25, round++, nullptr, levels);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(instance.graph.num_edges()));
}
BENCHMARK(BM_ProportionalRound)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_ProportionalRoundThreaded(benchmark::State& state) {
  // The same round on the deterministic parallel executor; items/sec across
  // the thread column exposes the scaling efficiency of the dominant sweep.
  const AllocationInstance instance =
      instance_for(static_cast<std::size_t>(state.range(0)), 8);
  const auto threads = static_cast<std::size_t>(state.range(1));
  const PowTable pow_table(0.25);
  std::vector<std::int32_t> levels(instance.graph.num_right(), 0);
  std::size_t round = 1;
  for (auto _ : state) {
    const LeftAggregate left =
        compute_left_aggregate(instance.graph, levels, pow_table, threads);
    const std::vector<double> alloc =
        compute_alloc(instance.graph, levels, left, pow_table, threads);
    apply_level_update(instance, alloc, 0.25, round++, nullptr, levels,
                       threads);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(instance.graph.num_edges()));
}
BENCHMARK(BM_ProportionalRoundThreaded)
    ->ArgsProduct({{10000, 50000}, {1, 2, 4, 8}});

// Late-round (convergence-heavy) recompute: drive the dynamics until the
// changed-vertex frontier is below 0.2% of m, then measure one quiescent
// round's aggregate+alloc recompute under each engine. The sparse variant
// re-derives the touched sets every iteration (that bookkeeping is part of
// its cost); both recompute bitwise-identical entries, so the items/sec gap
// is pure work-avoidance. The instance is load-balanced (total capacity ==
// n_L) so the dynamics genuinely quiesce — saturated extremes translate all
// levels uniformly forever, which is exactly the regime the auto engine
// keeps dense.
struct ConvergedFixture {
  AllocationInstance instance;
  PowTable pow_table{0.25};
  std::vector<std::int32_t> levels;
  LeftAggregate left;
  std::vector<double> alloc;
  RoundWorkspace ws;

  explicit ConvergedFixture(std::size_t n_left) {
    Xoshiro256pp rng(7);
    instance.graph = union_of_forests(n_left, n_left / 2, 8, rng);
    instance.capacities = Capacities(n_left / 2, 2);
    const auto& g = instance.graph;
    levels.assign(g.num_right(), 0);
    ws.init(g);
    const std::size_t m = g.num_edges();
    const std::size_t cap = tau_for_arboricity(
        static_cast<double>(g.num_vertices()), 0.25);
    for (std::size_t round = 1; round <= cap; ++round) {
      compute_left_aggregate_into(g, levels, pow_table, 1, left);
      compute_alloc_into(g, levels, left, pow_table, 1, alloc);
      apply_level_update(instance, alloc, 0.25, round, nullptr, levels, 1,
                         &ws.deltas);
      ws.derive_frontier(g, ws.deltas, 1);
      if (ws.frontier_volume() + ws.frontier().size() < m / 500) break;
    }
  }
};

void BM_ProportionalConvergedRoundDense(benchmark::State& state) {
  ConvergedFixture fx(static_cast<std::size_t>(state.range(0)));
  const auto& g = fx.instance.graph;
  for (auto _ : state) {
    compute_left_aggregate_into(g, fx.levels, fx.pow_table, 1, fx.left);
    compute_alloc_into(g, fx.levels, fx.left, fx.pow_table, 1, fx.alloc);
    benchmark::DoNotOptimize(fx.alloc.data());
  }
  state.counters["frontier"] = static_cast<double>(fx.ws.frontier().size());
  state.counters["frontier_vol"] = static_cast<double>(fx.ws.frontier_volume());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_ProportionalConvergedRoundDense)->Arg(10000)->Arg(50000);

void BM_ProportionalConvergedRoundSparse(benchmark::State& state) {
  ConvergedFixture fx(static_cast<std::size_t>(state.range(0)));
  const auto& g = fx.instance.graph;
  for (auto _ : state) {
    const bool derived = fx.ws.derive_touched(
        g, std::numeric_limits<std::uint64_t>::max());
    benchmark::DoNotOptimize(derived);
    for (const Vertex u : fx.ws.touched_left()) {
      recompute_left_entry(g, fx.levels, fx.pow_table, u, fx.left);
    }
    for (const Vertex v : fx.ws.touched_right()) {
      fx.alloc[v] =
          recompute_alloc_entry(g, fx.levels, fx.left, fx.pow_table, v);
    }
    benchmark::DoNotOptimize(fx.alloc.data());
  }
  state.counters["frontier"] = static_cast<double>(fx.ws.frontier().size());
  state.counters["frontier_vol"] = static_cast<double>(fx.ws.frontier_volume());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_ProportionalConvergedRoundSparse)->Arg(10000)->Arg(50000);

void BM_DinicOptimal(benchmark::State& state) {
  const AllocationInstance instance =
      instance_for(static_cast<std::size_t>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_allocation_value(instance));
  }
}
BENCHMARK(BM_DinicOptimal)->Arg(1000)->Arg(10000);

void BM_RoundingPass(benchmark::State& state) {
  const AllocationInstance instance =
      instance_for(static_cast<std::size_t>(state.range(0)), 8);
  const FractionalAllocation frac =
      solve_two_plus_eps(instance, 8.0, 0.25).allocation;
  Xoshiro256pp rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(round_fractional(instance, frac, rng));
  }
}
BENCHMARK(BM_RoundingPass)->Arg(1000)->Arg(10000);

void BM_PathBoosterFromGreedy(benchmark::State& state) {
  const AllocationInstance instance =
      instance_for(static_cast<std::size_t>(state.range(0)), 8);
  const IntegralAllocation seed = greedy_allocation(instance);
  for (auto _ : state) {
    benchmark::DoNotOptimize(boost_path_limited(instance, seed, 5));
  }
}
BENCHMARK(BM_PathBoosterFromGreedy)->Arg(1000)->Arg(10000);

}  // namespace

// Custom main instead of BENCHMARK_MAIN() so CTest can run `--smoke`:
// a fast sanity run (~1ms time budget per benchmark, so a handful of
// iterations each) that finishes in seconds and fails loudly if a
// hot-path entry point crashes or asserts. `--json=PATH` (or `--json PATH`)
// shorthands google-benchmark's JSON reporter flags, emitting the run for
// scripts/compare_bench.py.
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 4);
  bool smoke = false;
  std::string json_path;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  static char min_time_flag[] = "--benchmark_min_time=0.001";
  if (smoke) {
    args.push_back(min_time_flag);
  }
  static char out_format_flag[] = "--benchmark_out_format=json";
  std::string out_flag;
  if (!json_path.empty()) {
    out_flag = "--benchmark_out=" + json_path;
    args.push_back(out_flag.data());
    args.push_back(out_format_flag);
  }
  int adjusted_argc = static_cast<int>(args.size());
  args.push_back(nullptr);  // argv[argc] == nullptr, as for a real main()
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
