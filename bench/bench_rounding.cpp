// E6 — Section 6 rounding: sampling each edge at rate x_e/6 and dropping
// heavy vertices yields E[|M|] ≥ wt(x)/9, a constant success probability
// for |M| ≥ |M*|/450, and w.h.p. via O(log n) independent copies.
// `--json=PATH` emits the seed-deterministic per-instance counters for the
// CI perf gate.
#include "bench_common.hpp"
#include "bench_json.hpp"

#include "util/cli.hpp"

#include <vector>

int main(int argc, char** argv) {
  using namespace mpcalloc;
  using namespace mpcalloc::bench;

  CliParser cli("E6: fractional-to-integral rounding (Section 6)");
  cli.option("json", "", "write machine-readable metrics JSON to this path");
  if (!cli.parse(argc, argv)) return 0;

  print_preamble("E6: fractional-to-integral rounding (Section 6)",
                 "E[|M|] >= wt(M_f)/9; best of O(log n) copies w.h.p.; "
                 "greedy completion closes most of the constant-factor gap");

  JsonMetrics metrics("bench_rounding");
  WallTimer total_timer;

  Table table("per-instance rounding statistics, 500 copies each");
  table.header({"instance", "wt(M_f)", "OPT", "E[|M|] est", "E/wt >= 1/9?",
                "P[|M|>=OPT/450]", "best-of-logn ratio", "+maximal ratio"});

  struct Row {
    const char* name;
    std::uint32_t lambda;
    std::uint32_t cap_hi;
    std::uint64_t seed;
  };
  const std::vector<Row> rows{{"forest", 1, 3, 21},
                              {"lam4", 4, 5, 22},
                              {"lam16", 16, 8, 23},
                              {"wide-caps", 4, 20, 24}};

  for (const Row& row : rows) {
    const AllocationInstance instance =
        standard_instance(3000, 1200, row.lambda, row.cap_hi, row.seed);
    const CertifiedOptimum certified = certified_optimal_value(instance);
    const auto opt = certified.value;
    const FractionalAllocation frac =
        solve_two_plus_eps(instance, row.lambda, 0.25).allocation;
    Xoshiro256pp rng(row.seed * 31);

    constexpr int kCopies = 500;
    double total = 0.0;
    int successes = 0;
    std::size_t best = 0;
    for (int copy = 0; copy < kCopies; ++copy) {
      const IntegralAllocation m = round_fractional(instance, frac, rng);
      total += static_cast<double>(m.size());
      if (static_cast<double>(m.size()) >= static_cast<double>(opt) / 450.0) {
        ++successes;
      }
      best = std::max(best, m.size());
    }
    const double mean = total / kCopies;

    BestOfRoundingResult log_copies = round_best_of(instance, frac, rng);
    const double best_ratio = approximation_ratio(
        opt, static_cast<double>(log_copies.best.size()));
    make_maximal(instance, log_copies.best);
    const double maximal_ratio = approximation_ratio(
        opt, static_cast<double>(log_copies.best.size()));

    const std::string prefix = std::string("inst_") + row.name;
    metrics.counter(prefix + "_opt", static_cast<double>(opt));
    metrics.counter(prefix + "_min_cut",
                    static_cast<double>(certified.cut_capacity));
    metrics.counter(prefix + "_certificate_ok",
                    certified.certificate_ok ? 1.0 : 0.0);
    metrics.counter(prefix + "_frac_weight", frac.weight());
    metrics.counter(prefix + "_mean_rounded_size", mean);
    metrics.counter(prefix + "_success_rate",
                    static_cast<double>(successes) / kCopies);
    metrics.counter(prefix + "_maximal_ratio", maximal_ratio);

    table.row({row.name, Table::num(frac.weight(), 1),
               Table::integer(static_cast<long long>(opt)),
               Table::num(mean, 1),
               mean * 9.0 >= frac.weight() ? "yes" : "NO",
               Table::pct(static_cast<double>(successes) / kCopies, 1),
               Table::num(best_ratio, 3), Table::num(maximal_ratio, 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: the expectation column clears the wt/9 bound, "
               "the success probability is ~100% (the paper's 1/450 threshold "
               "is extremely conservative), and greedy completion brings the "
               "integral ratio near the fractional one.\n";

  metrics.time_ms("total_ms", total_timer.millis());
  if (const std::string json_path = cli.get("json"); !json_path.empty()) {
    metrics.write(json_path);
    std::cout << "\nmetrics written to " << json_path << "\n";
  }
  return 0;
}
