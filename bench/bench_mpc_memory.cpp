// E5b — Theorem 3's space accounting: n^α words per machine (enforced by
// the Cluster) and Õ(λn) total memory.
//
// Sweep the degree (λ ≈ d/2) of left-regular instances at fixed n and
// report the enforced per-machine high-watermark against S, the peak total
// resident words against the ~λn-word input, and the exponentiation ball
// volumes that eq. (4)'s phase length keeps below S.
//
// `--threads` drives the simulator's shard/tile parallelism (counters are
// bitwise identical for any value); `--json=PATH` emits the space counters
// for the CI perf gate.
#include "bench_common.hpp"
#include "bench_json.hpp"

#include "util/cli.hpp"

#include <string>
#include <vector>

int main(int argc, char** argv) {
  using namespace mpcalloc;
  using namespace mpcalloc::bench;

  CliParser cli("E5b: MPC memory accounting");
  cli.option("json", "", "write machine-readable metrics JSON to this path");
  cli.threads_option();
  if (!cli.parse(argc, argv)) return 0;
  const auto threads = static_cast<std::size_t>(cli.get_size("threads"));

  const double eps = 0.25;
  const std::size_t n = 1600;

  print_preamble("E5b: MPC memory accounting",
                 "Theorem 3: n^alpha local memory, O~(lambda*n) total memory; "
                 "ball volumes must fit a machine (eq. 4)");

  JsonMetrics metrics("bench_mpc_memory");
  WallTimer total_timer;

  Table table("left-regular L=R=1600, alpha=0.8");
  table.header({"degree", "m (=d*n)", "S words", "peak machine", "peak/S",
                "peak total", "total/input", "ball max |V|"});

  for (const std::uint32_t degree : {4u, 8u, 16u, 32u, 64u}) {
    Xoshiro256pp rng(90 + degree);
    AllocationInstance instance;
    instance.graph = left_regular(n, n, degree, rng);
    instance.capacities = uniform_capacities(n, 1, 5, rng);
    const std::uint64_t input_words =
        2 * instance.graph.num_edges() + instance.graph.num_vertices();

    MpcDriverConfig config;
    config.epsilon = eps;
    config.alpha = 0.8;
    config.samples_per_group = 4;
    config.seed = 10;
    config.lambda = degree / 2.0;
    config.num_threads = threads;
    const MpcRunResult phased = run_mpc_phased(instance, config);

    table.row(
        {Table::integer(degree),
         Table::integer(static_cast<long long>(instance.graph.num_edges())),
         Table::integer(static_cast<long long>(phased.machine_words)),
         Table::integer(static_cast<long long>(phased.peak_machine_words)),
         Table::num(static_cast<double>(phased.peak_machine_words) /
                        static_cast<double>(phased.machine_words),
                    3),
         Table::integer(static_cast<long long>(phased.peak_total_words)),
         Table::num(static_cast<double>(phased.peak_total_words) /
                        static_cast<double>(input_words),
                    2),
         Table::integer(static_cast<long long>(phased.max_ball_volume))});

    const std::string suffix = "_d" + std::to_string(degree);
    metrics.counter("peak_machine_words" + suffix,
                    static_cast<double>(phased.peak_machine_words));
    metrics.counter("peak_total_words" + suffix,
                    static_cast<double>(phased.peak_total_words));
    metrics.counter("max_ball_volume" + suffix,
                    static_cast<double>(phased.max_ball_volume));
  }
  table.print(std::cout);
  std::cout << "\nShape check: peak/S stays <= 1 (the Cluster throws "
               "otherwise); total memory stays a small constant multiple of "
               "the lambda*n-word input.\n";

  metrics.time_ms("total_sweep_ms", total_timer.millis());
  if (const std::string json_path = cli.get("json"); !json_path.empty()) {
    metrics.write(json_path);
    std::cout << "\nmetrics written to " << json_path << "\n";
  }
  return 0;
}
