// E9 — ablations on the two robustness claims behind the MPC simulation:
//
// Table A (Appendix A / Theorem 16): Algorithm 3 with adversarial loose
// thresholds k_{v,r} ∈ [1/k, k] stays a (2+(2k+8)ε)-approximation — the
// property that lets Algorithm 2 get away with estimated aggregates.
// Table B: the sampled executor's quality and trajectory divergence as a
// function of the per-group sample budget t, from near-exact down to 1.
#include "bench_common.hpp"

#include <vector>

int main() {
  using namespace mpcalloc;
  using namespace mpcalloc::bench;

  const double eps = 0.25;
  const std::uint32_t lambda = 8;
  const AllocationInstance instance = standard_instance(3000, 1200, lambda, 5, 88);
  const auto opt = optimal_allocation_value(instance);
  const std::size_t tau = tau_for_arboricity(lambda, eps);

  print_preamble("E9: threshold/sampling ablations (Appendix A)",
                 "Loose thresholds k in [1/4,4] and per-group samples both "
                 "trade accuracy for robustness; OPT = " + std::to_string(opt));

  Table thresholds("Algorithm 3: adversarial k_{v,r} in [1/k, k]");
  thresholds.header({"k", "ratio", "bound 2+(2k+8)e"});
  for (const double k : {1.0, 2.0, 4.0}) {
    ProportionalConfig config;
    config.epsilon = eps;
    config.max_rounds = tau;
    if (k != 1.0) {
      config.threshold_k = [k](Vertex v, std::size_t round) {
        return (v + round) % 2 == 0 ? k : 1.0 / k;
      };
    }
    const ProportionalResult result = run_proportional(instance, config);
    thresholds.row(
        {Table::num(k, 1),
         Table::num(approximation_ratio(opt, result.allocation.weight()), 4),
         Table::num(2.0 + (2.0 * k + 8.0) * eps, 2)});
  }
  thresholds.print(std::cout);

  // Exact reference trajectory for divergence measurement.
  ProportionalConfig exact_config;
  exact_config.epsilon = eps;
  exact_config.max_rounds = tau;
  const ProportionalResult exact = run_proportional(instance, exact_config);

  Table sampled_table("Algorithm 2 executor: per-group sample budget t");
  sampled_table.header({"t", "ratio", "levels diverged", "samples drawn"});
  for (const std::size_t t : {1u, 2u, 4u, 8u, 32u, 1u << 20}) {
    Xoshiro256pp rng(99);
    SampledConfig config;
    config.epsilon = eps;
    config.phase_length = 3;
    config.samples_per_group = t;
    config.max_rounds = tau;
    const SampledResult result = run_sampled(instance, config, rng);
    std::size_t diverged = 0;
    for (Vertex v = 0; v < exact.final_levels.size(); ++v) {
      diverged += result.final_levels[v] != exact.final_levels[v] ? 1 : 0;
    }
    sampled_table.row(
        {t >= (1u << 20) ? "exact" : Table::integer(static_cast<long long>(t)),
         Table::num(approximation_ratio(opt, result.allocation.weight()), 4),
         Table::integer(static_cast<long long>(diverged)),
         Table::integer(static_cast<long long>(result.samples_drawn))});
  }
  sampled_table.print(std::cout);
  std::cout << "\nShape check: ratios stay below their bounds for every k; "
               "the sampled executor's ratio degrades gracefully as t "
               "shrinks and matches the exact trajectory at t=exact.\n";
  return 0;
}
