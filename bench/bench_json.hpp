// Machine-readable metric emission for the experiment harnesses, feeding
// the CI perf gate (scripts/compare_bench.py against bench/baselines/).
//
// Two metric kinds:
//   * counter — deterministic quantities (round counts, ratios, error
//     rates) reproducible from the seed; compared tightly.
//   * time_ms — wall-clock timings; compared with a large multiplicative
//     noise threshold because baseline and CI hardware differ.
// Each file carries its own tolerances so the comparison policy lives next
// to the numbers it governs.
#pragma once

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace mpcalloc::bench {

class JsonMetrics {
 public:
  explicit JsonMetrics(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void counter(const std::string& name, double value) {
    metrics_.push_back({name, "counter", value});
  }
  void time_ms(const std::string& name, double value) {
    metrics_.push_back({name, "time_ms", value});
  }

  /// Relative slack for counters (|cur−base| ≤ tol·max(|base|, 1e-12)).
  /// Counters are seed-deterministic, but libm differences across
  /// platforms can nudge trajectories; the default absorbs that.
  void set_counter_tolerance(double tolerance) { counter_tolerance_ = tolerance; }
  /// Multiplicative budget for timings (cur ≤ factor · base).
  void set_time_tolerance(double factor) { time_tolerance_ = factor; }

  /// Write the metrics file; throws on I/O failure so CI fails loudly.
  void write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      throw std::runtime_error("JsonMetrics: cannot open " + path);
    }
    out << "{\n";
    out << "  \"bench\": \"" << bench_name_ << "\",\n";
    out << "  \"schema\": 1,\n";
    out << "  \"counter_tolerance\": " << format(counter_tolerance_) << ",\n";
    out << "  \"time_tolerance\": " << format(time_tolerance_) << ",\n";
    out << "  \"metrics\": [\n";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      out << "    {\"name\": \"" << m.name << "\", \"kind\": \"" << m.kind
          << "\", \"value\": " << format(m.value) << "}"
          << (i + 1 < metrics_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out) {
      throw std::runtime_error("JsonMetrics: failed writing " + path);
    }
  }

 private:
  struct Metric {
    std::string name;
    std::string kind;
    double value;
  };

  static std::string format(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
  }

  std::string bench_name_;
  std::vector<Metric> metrics_;
  double counter_tolerance_ = 0.1;
  double time_tolerance_ = 10.0;
};

}  // namespace mpcalloc::bench
